package metrics

// GateStats aggregates the cluster dispatcher's admission-layer counters:
// everything that happened to tasks at the front-end gate rather than
// inside a datacenter. The three loss counters are deliberately distinct —
// Dropped, Shed, and LostUndetected answer different capacity questions —
// and their sum is exactly the engine-level exits (tasks that left the
// system without ever being admitted to a simulator core), which the
// equivalence tests assert.
type GateStats struct {
	// Dropped counts arrivals (and failed-over tasks) dropped at the gate:
	// no believed-healthy datacenter and no gate buffer configured.
	Dropped int
	// Shed counts tasks shed from the bounded gate buffer: overflow
	// victims under the shedding policy, plus any tasks still buffered
	// when the trial ended with every datacenter down.
	Shed int
	// LostUndetected counts tasks lost after bouncing off
	// down-but-undetected datacenters: their retry budget ran out or
	// their deadline expired while they were still bouncing.
	LostUndetected int
	// Retries counts re-dispatch attempts after bounced dispatches.
	Retries int
	// Bounced counts dispatches that landed on a down-but-undetected
	// datacenter and came back after the detection delay.
	Bounced int
	// Buffered counts tasks that entered the gate buffer (whether they
	// later drained or were shed).
	Buffered int
	// MaxQueueDepth is the deepest the gate buffer ever got.
	MaxQueueDepth int
	// Detections counts dc-fail events the health monitor actually
	// flagged (an outage the datacenter recovers from before the
	// suspicion threshold trips is never detected).
	Detections int
	// DetectionLagTicks sums, over Detections, the delay between a
	// datacenter's true failure and the monitor marking it down.
	DetectionLagTicks int64
}

// EngineExits returns the gate-level task exits: tasks that left the
// system at the dispatcher, never reaching a datacenter's collector.
func (g GateStats) EngineExits() int { return g.Dropped + g.Shed + g.LostUndetected }
