// Fairness: the paper's Section VII-D study — raw robustness maximization
// (PAM) starves task types with long execution times, because short tasks
// are always the safer bet. PAMF's sufferage mechanism relaxes pruning
// thresholds for starved types, trading a few robustness points for a much
// tighter spread of per-type completion rates.
//
// Run with:
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	"taskprune"
	"taskprune/internal/stats"
)

func main() {
	matrix := taskprune.SPECPET()
	fmt.Println("fairness factor sweep, PAMF @34k (mean of 5 trials)")
	fmt.Println("ϑ      type-variance   robustness")

	const trials = 5
	for _, factor := range []float64{0, 0.05, 0.10, 0.25} {
		var varSum, robSum float64
		for trial := 0; trial < trials; trial++ {
			tasks := taskprune.MustGenerateWorkload(taskprune.WorkloadConfig{
				NumTasks: 800,
				Rate:     taskprune.RateForLevel(taskprune.Level34k),
				VarFrac:  0.10,
				Beta:     2.0,
			}, matrix, taskprune.NewRNG(300+int64(trial)))

			cfg := taskprune.MustConfigFor("PAMF", matrix)
			cfg.FairnessFactor = factor
			sim, err := taskprune.NewSimulator(cfg)
			if err != nil {
				log.Fatal(err)
			}
			st, err := sim.Run(tasks)
			if err != nil {
				log.Fatal(err)
			}
			varSum += st.TypeVariancePct
			robSum += st.RobustnessPct
		}
		fmt.Printf("%-5.0f%% %13.1f   %9.1f%%\n", factor*100, varSum/trials, robSum/trials)
	}

	// Show the per-type detail for one PAM trial vs one PAMF trial.
	fmt.Println("\nper-type completion rates in a single trial:")
	for _, name := range []string{"PAM", "PAMF"} {
		tasks := taskprune.MustGenerateWorkload(taskprune.WorkloadConfig{
			NumTasks: 800,
			Rate:     taskprune.RateForLevel(taskprune.Level34k),
			VarFrac:  0.10,
			Beta:     2.0,
		}, matrix, taskprune.NewRNG(999))
		sim, err := taskprune.NewSimulator(taskprune.MustConfigFor(name, matrix))
		if err != nil {
			log.Fatal(err)
		}
		st, err := sim.Run(tasks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s variance %5.1f  rates:", name, st.TypeVariancePct)
		for _, pct := range st.PerTypePct {
			fmt.Printf(" %3.0f", pct)
		}
		fmt.Printf("   (mean spread ±%.1f)\n", stats.StdDev(st.PerTypePct))
	}
}
