// Quickstart: simulate one oversubscribed trial with the paper's PAM
// (Pruning-Aware Mapper) and compare it against plain MinMin on the exact
// same workload.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"taskprune"
)

func main() {
	// The evaluation PET matrix: 12 task types × 8 inconsistently
	// heterogeneous machines, profiled from gamma-sampled histograms.
	matrix := taskprune.SPECPET()

	// One 800-task trial at the paper's extreme "34k" oversubscription
	// level (≈ 3× aggregate service capacity). The same seed is used for
	// both heuristics so they face identical arrivals, deadlines, and
	// ground-truth execution times.
	wcfg := taskprune.WorkloadConfig{
		NumTasks: 800,
		Rate:     taskprune.RateForLevel(taskprune.Level34k),
		VarFrac:  0.10, // arrival-gamma variance = 10% of the mean
		Beta:     2.0,  // deadline slack: δ = arrival + avg_type + β·avg_all
	}

	for _, name := range []string{"PAM", "MM"} {
		tasks := taskprune.MustGenerateWorkload(wcfg, matrix, taskprune.NewRNG(42))

		// ConfigFor wires up the paper's evaluation settings: PAM gets the
		// full pruning mechanism (defer at 90%, drop at 50%, λ=0.9 EWMA
		// with a Schmitt trigger) under scenario-C eviction semantics;
		// MM runs unprotected.
		cfg := taskprune.MustConfigFor(name, matrix)
		sim, err := taskprune.NewSimulator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := sim.Run(tasks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s robustness %5.1f%%  (on-time %d, dropped %d, missed %d of %d analyzed)\n",
			name, stats.RobustnessPct, stats.Completed, stats.Dropped, stats.Missed, stats.Window)
	}
	fmt.Println("\nPAM's probabilistic pruning defers unlikely-to-succeed tasks and drops")
	fmt.Println("doomed ones, so machines spend their time on tasks that can still win.")
}
