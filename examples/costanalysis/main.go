// Costanalysis: the paper's Section VII-F study — when machines are billed
// at EC2-like hourly rates, probabilistic pruning does not just raise
// robustness, it lowers the dollars spent per robustness point, because
// machines stop burning money on tasks that were never going to make their
// deadlines.
//
// Run with:
//
//	go run ./examples/costanalysis
package main

import (
	"fmt"
	"log"

	"taskprune"
	"taskprune/internal/cost"
)

func main() {
	matrix := taskprune.SPECPET()
	prices := cost.SPECMachinePrices()

	fmt.Println("cost per robustness point at the 34k oversubscription level")
	fmt.Println("(lower is better; mean of 5 trials; EC2-like hourly prices)")
	fmt.Println()

	const trials = 5
	for _, name := range []string{"PAM", "PAMF", "MOC", "MM"} {
		var costSum, robSum float64
		for trial := 0; trial < trials; trial++ {
			tasks := taskprune.MustGenerateWorkload(taskprune.WorkloadConfig{
				NumTasks: 800,
				Rate:     taskprune.RateForLevel(taskprune.Level34k),
				VarFrac:  0.10,
				Beta:     2.0,
			}, matrix, taskprune.NewRNG(7+int64(trial)))

			cfg := taskprune.MustConfigFor(name, matrix)
			cfg.Prices = prices
			sim, err := taskprune.NewSimulator(cfg)
			if err != nil {
				log.Fatal(err)
			}
			st, err := sim.Run(tasks)
			if err != nil {
				log.Fatal(err)
			}
			costSum += st.CostPerPct
			robSum += st.RobustnessPct
		}
		fmt.Printf("%-5s  %.3f m$ per robustness point   (robustness %5.1f%%)\n",
			name, costSum/trials, robSum/trials)
	}
	fmt.Println("\nPAM/PAMF stop paying for doomed work: pruned tasks never occupy a")
	fmt.Println("billed machine, so each completed-on-time percentage point costs less.")
}
