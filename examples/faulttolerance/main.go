// Fault tolerance: what happens when an oversubscribed cluster loses
// machines mid-stream?
//
// This demo runs the same oversubscribed workload twice per heuristic: once
// on the paper's static 8-machine fleet, and once under a churn scenario in
// which two machines fail at one third of the trial (their queues dumped
// back into the batch), both recover at two thirds, and a third machine
// runs 2× slower in between. The interesting number is how much robustness
// each mapper gives back under churn: PAM's pruning mechanism sheds the
// tasks the shrunken fleet can no longer save, so the surviving machines
// keep completing work — while MinMin keeps feeding them doomed tasks.
//
// Run with:
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"taskprune"
)

func main() {
	matrix := taskprune.SPECPET()

	// The churn scenario, declared with the builder API. The same thing in
	// JSON (for hcsim -scenario) is printed at the end.
	churn := taskprune.NewScenario("demo-churn").
		DegradeAt(900, 0, 2).                        // machine 0 runs half speed...
		FailAt(1200, 2, taskprune.RequeueOnFailure). // machine 2 dies, queue requeued
		FailAt(1400, 5, taskprune.RequeueOnFailure). // machine 5 follows
		RecoverAt(2600, 2).                          // both come back...
		RecoverAt(2800, 5).
		DegradeAt(3000, 0, 1) // ...and machine 0 is restored

	wcfg := taskprune.WorkloadConfig{
		NumTasks: 800,
		Rate:     taskprune.RateForLevel(taskprune.Level19k),
		VarFrac:  0.10,
		Beta:     2.0,
	}

	fmt.Println("robustness @19k, static fleet vs mid-trial churn (same seed):")
	fmt.Println()
	fmt.Printf("%-5s  %8s  %8s  %s\n", "", "static", "churn", "requeued")
	for _, name := range []string{"PAM", "PAMF", "MOC", "MM"} {
		var rob [2]float64
		var requeued int
		for i, sc := range []*taskprune.Scenario{nil, churn} {
			cfg := taskprune.MustConfigFor(name, matrix)
			cfg.Scenario = sc
			tasks := taskprune.MustGenerateWorkload(wcfg, matrix, taskprune.NewRNG(7))
			sim, err := taskprune.NewSimulator(cfg)
			if err != nil {
				log.Fatal(err)
			}
			stats, err := sim.Run(tasks)
			if err != nil {
				log.Fatal(err)
			}
			rob[i] = stats.RobustnessPct
			if sc != nil {
				requeued = sim.Requeued()
			}
		}
		fmt.Printf("%-5s  %7.1f%%  %7.1f%%  %d\n", name, rob[0], rob[1], requeued)
	}

	fmt.Println()
	fmt.Println("The pruning mappers hold on to most of their static robustness because")
	fmt.Println("the dropping stage immediately sheds the load the shrunken fleet cannot")
	fmt.Println("carry; the baselines waste the survivors' time on doomed tasks.")
	fmt.Println()
	if blob, err := churn.MarshalJSON(); err == nil {
		fmt.Printf("the same scenario as JSON (hcsim -exp single -scenario file.json):\n%s\n", blob)
	}
}
