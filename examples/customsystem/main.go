// Customsystem: adopt the library for your own fleet. Profiles a
// user-defined 3-type × 3-machine PET from your own mean execution times,
// persists it to JSON (the artifact you would ship to a production
// scheduler), replays a workload trace through a CSV round-trip, and runs
// PAM over it with full tracing.
//
// Run with:
//
//	go run ./examples/customsystem
package main

import (
	"bytes"
	"fmt"
	"log"

	"taskprune"
)

func main() {
	// Your measured mean execution times (ticks ≈ ms): rows are task
	// types, columns machines. Note the inconsistent heterogeneity —
	// machine 2 wins type 2 but loses type 0.
	means := [][]float64{
		{30, 45, 90},
		{60, 35, 50},
		{95, 70, 25},
	}
	matrix, err := taskprune.BuildPET(means, taskprune.DefaultPETBuildConfig(), taskprune.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}

	// Persist the profile and load it back — this is what an offline
	// profiling job hands to the online scheduler.
	var petBlob bytes.Buffer
	if err := matrix.WriteJSON(&petBlob); err != nil {
		log.Fatal(err)
	}
	loaded, err := taskprune.ReadPETJSON(&petBlob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PET profile: %d task types × %d machines, %d bytes serialized\n",
		loaded.NumTypes(), loaded.NumMachines(), petBlob.Cap())

	// Generate a workload at ~2× capacity, round-trip it through the CSV
	// trace format (so an externally captured trace plugs in identically).
	capacity := float64(loaded.NumMachines()) / loaded.GrandMean()
	tasks := taskprune.MustGenerateWorkload(taskprune.WorkloadConfig{
		NumTasks: 500, Rate: 2 * capacity, VarFrac: 0.10, Beta: 2.0,
	}, loaded, taskprune.NewRNG(2))
	var traceBlob bytes.Buffer
	if err := taskprune.WriteWorkloadCSV(&traceBlob, tasks); err != nil {
		log.Fatal(err)
	}
	replayed, err := taskprune.ReadWorkloadCSV(&traceBlob, loaded.NumMachines())
	if err != nil {
		log.Fatal(err)
	}

	// Run PAM with decision tracing on.
	cfg := taskprune.MustConfigFor("PAM", loaded)
	rec := taskprune.NewTraceRecorder()
	cfg.Trace = rec
	sim, err := taskprune.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := sim.Run(replayed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PAM on the replayed trace: robustness %.1f%% (%d/%d on time)\n",
		st.RobustnessPct, st.Completed, st.Window)
	fmt.Printf("decision stream: %d events recorded\n", rec.Len())
}
