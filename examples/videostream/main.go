// Videostream: the paper's motivating scenario (Section VII-G) — a live
// video transcoding service running four transcode task types on four
// heterogeneous cloud VM types (CPU-optimized, memory-optimized,
// general-purpose, GPU), swept across rising oversubscription levels.
//
// Reproduces the shape of Figure 9: PAMF's advantage over MinMin widens as
// the system becomes more oversubscribed.
//
// Run with:
//
//	go run ./examples/videostream
package main

import (
	"fmt"
	"log"

	"taskprune"
)

func main() {
	matrix := taskprune.VideoPET()
	fmt.Println("live video transcoding on 4 heterogeneous EC2-like VMs")
	fmt.Println("level    PAMF      MM     (robustness %, mean of 5 trials)")

	levels := []float64{
		taskprune.Level10k, taskprune.Level12k5,
		taskprune.Level15k, taskprune.Level17k5,
	}
	const trials = 5
	for _, level := range levels {
		results := map[string]float64{}
		for _, name := range []string{"PAMF", "MM"} {
			var sum float64
			for trial := 0; trial < trials; trial++ {
				tasks := taskprune.MustGenerateWorkload(taskprune.WorkloadConfig{
					NumTasks: 800,
					Rate:     taskprune.VideoRateForLevel(level),
					VarFrac:  0.10,
					Beta:     2.0,
				}, matrix, taskprune.NewRNG(100+int64(trial)))
				sim, err := taskprune.NewSimulator(taskprune.MustConfigFor(name, matrix))
				if err != nil {
					log.Fatal(err)
				}
				st, err := sim.Run(tasks)
				if err != nil {
					log.Fatal(err)
				}
				sum += st.RobustnessPct
			}
			results[name] = sum / trials
		}
		fmt.Printf("%-7s %5.1f%%  %5.1f%%   (PAMF ahead by %.1f points)\n",
			fmt.Sprintf("%.1fk", level/1000), results["PAMF"], results["MM"], results["PAMF"]-results["MM"])
	}
}
