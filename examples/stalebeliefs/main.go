// Stale beliefs: what happens when the mapper's execution-time knowledge
// is wrong?
//
// The paper's mapper consults a PET matrix profiled offline. This demo
// splits that knowledge from the ground truth and asks two questions.
//
// First, what does staleness cost? The same oversubscribed workload runs
// under a mid-trial drift that slows three machines to 2.5x, once with an
// oracle belief (the mapper sees the truth — the paper's setting) and
// once with the belief frozen at t=0. The frozen mapper keeps pruning
// against distributions the drift has invalidated, and pays for it.
//
// Second, what does online re-estimation buy? The mapper is handed a
// cold prior — a flat PET that knows only the fleet-wide mean, none of
// the per-(type, machine) structure — and runs with it frozen versus
// rebuilding per-cell PMFs from observed completions. As observations
// accumulate past the sample floor, the online mapper recovers structure
// the prior never had and climbs away from the frozen-cold floor toward
// the oracle ceiling.
//
// Run with:
//
//	go run ./examples/stalebeliefs
package main

import (
	"fmt"
	"log"

	"taskprune"
)

func run(cfg taskprune.SimConfig, matrix *taskprune.PETMatrix, numTasks int) (*taskprune.Simulator, taskprune.TrialStats) {
	wcfg := taskprune.WorkloadConfig{
		NumTasks: numTasks,
		Rate:     taskprune.RateForLevel(taskprune.Level19k),
		VarFrac:  0.10,
		Beta:     2.0,
	}
	tasks := taskprune.MustGenerateWorkload(wcfg, matrix, taskprune.NewRNG(7))
	sim, err := taskprune.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := sim.Run(tasks)
	if err != nil {
		log.Fatal(err)
	}
	return sim, stats
}

func main() {
	matrix := taskprune.SPECPET()

	// Part 1: the cost of staleness. Three machines drift to 2.5x slower
	// over the heart of the trial; the degradation is real, but only the
	// oracle mapper is told about it.
	drift := taskprune.NewScenario("stale-drift").
		DriftAt(800, 2400, 0, 1, 2.5, 0).
		DriftAt(800, 2400, 3, 1, 2.5, 0).
		DriftAt(800, 2400, 6, 1, 2.5, 0)

	fmt.Println("1. the cost of stale knowledge (PAM @19k, 2.5x three-machine drift):")
	fmt.Println()
	for _, b := range []struct {
		name   string
		policy *taskprune.BeliefPolicy
	}{
		{"oracle", nil}, // no policy: the mapper sees the truth
		{"frozen", &taskprune.BeliefPolicy{Kind: taskprune.BeliefFrozen}},
	} {
		cfg := taskprune.MustConfigFor("PAM", matrix)
		cfg.Scenario = drift
		cfg.Belief = b.policy
		_, stats := run(cfg, matrix, 800)
		fmt.Printf("   %-7s  %5.1f%% robustness\n", b.name, stats.RobustnessPct)
	}

	// Part 2: what re-estimation buys. A cold prior that knows only the
	// fleet-wide mean execution time — no per-(type, machine) structure.
	gm := matrix.GrandMean()
	means := make([][]float64, matrix.NumTypes())
	for i := range means {
		row := make([]float64, matrix.NumMachines())
		for j := range row {
			row[j] = gm
		}
		means[i] = row
	}
	prior, err := taskprune.BuildPET(means, taskprune.DefaultPETBuildConfig(), taskprune.NewRNG(99))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("2. learning a cold prior (static fleet, flat prior vs the real PET):")
	fmt.Println()
	fmt.Printf("   %-6s  %11s  %11s  %8s\n", "tasks", "frozen-cold", "online-cold", "oracle")
	for _, n := range []int{400, 800, 1600} {
		var rob [3]float64
		var observed, refreshes int
		for i, policy := range []*taskprune.BeliefPolicy{
			{Kind: taskprune.BeliefFrozen},
			{Kind: taskprune.BeliefOnline, Refresh: 10, MinSamples: 5},
			nil,
		} {
			cfg := taskprune.MustConfigFor("PAM", matrix)
			cfg.Belief = policy
			if policy != nil {
				cfg.BeliefPrior = prior
			}
			sim, stats := run(cfg, matrix, n)
			rob[i] = stats.RobustnessPct
			if policy != nil && policy.Kind == taskprune.BeliefOnline {
				observed, refreshes = sim.BeliefObservations(), sim.BeliefRefreshes()
			}
		}
		fmt.Printf("   %-6d  %10.1f%%  %10.1f%%  %7.1f%%   (%d observed, %d refreshes)\n",
			n, rob[0], rob[1], rob[2], observed, refreshes)
	}

	fmt.Println()
	fmt.Println("The frozen-cold mapper never escapes the flat prior; the online mapper")
	fmt.Println("recovers per-cell structure from completions once cells pass the sample")
	fmt.Println("floor and pulls ahead. Single-seed runs are noisy — the stale-pet and")
	fmt.Println("belief-converge experiments (cmd/hcsim) average both effects over trials.")
	fmt.Println()
	if blob, err := drift.MarshalJSON(); err == nil {
		fmt.Printf("the drift scenario as JSON (hcsim -exp single -scenario file.json -belief frozen):\n%s\n", blob)
	}
}
