package taskprune

// Benchmark harness: one bench per evaluation figure of the paper plus the
// DESIGN.md ablations. Each bench iteration regenerates the figure's full
// sweep at a reduced trial count (benchmarks measure harness cost and smoke
// the pipelines; EXPERIMENTS.md records the paper-scale numbers produced by
// cmd/hcsim). Run with:
//
//	go test -bench=. -benchmem
//
// The per-figure benches report robustness means through b.ReportMetric so
// a bench run doubles as a quick shape check.

import (
	"testing"

	"taskprune/internal/experiments"
)

// benchOptions keeps a single bench iteration around a second or two on one
// core: 2 trials, 300 tasks per trial.
func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Trials = 2
	o.Tasks = 300
	return o
}

func reportFigure(b *testing.B, fig *Figure) {
	b.Helper()
	for _, p := range fig.Points {
		b.ReportMetric(p.Robustness.Mean, p.Series+"@"+p.Label+"_rob%")
	}
}

// BenchmarkFig4Lambda regenerates Figure 4 (oversubscription EWMA weight λ
// sweep, single threshold vs Schmitt trigger).
func BenchmarkFig4Lambda(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig4(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			_ = fig
		}
	}
}

// BenchmarkFig5Thresholds regenerates Figure 5 (deferring threshold sweep
// per dropping threshold).
func BenchmarkFig5Thresholds(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Fairness regenerates Figure 6 (fairness factor sweep).
func BenchmarkFig6Fairness(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Robustness regenerates Figure 7 (all six heuristics at 19k
// and 34k) and reports the robustness means it observed.
func BenchmarkFig7Robustness(b *testing.B) {
	o := benchOptions()
	var last *Figure
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	reportFigure(b, last)
}

// BenchmarkFig8Cost regenerates Figure 8 (cost per robustness point).
func BenchmarkFig8Cost(b *testing.B) {
	o := benchOptions()
	var last *Figure
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	for _, p := range last.Points {
		b.ReportMetric(p.CostPerPct.Mean, p.Series+"@"+p.Label+"_$/pct")
	}
}

// BenchmarkFig9Video regenerates Figure 9 (video transcoding, PAMF vs MM).
func BenchmarkFig9Video(b *testing.B) {
	o := benchOptions()
	var last *Figure
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	reportFigure(b, last)
}

// BenchmarkAblationCompaction measures the PMF-compaction design choice.
func BenchmarkAblationCompaction(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCompaction(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEq7 measures the per-task threshold adjustment ablation.
func BenchmarkAblationEq7(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEq7(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationScenario measures scenario B vs C dropping semantics.
func BenchmarkAblationScenario(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationScenario(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleTrialPAM measures the cost of one full 800-task PAM trial
// at the 34k level — the unit of work every figure multiplies.
func BenchmarkSingleTrialPAM(b *testing.B) {
	matrix := SPECPET()
	cfg := MustConfigFor("PAM", matrix)
	for i := 0; i < b.N; i++ {
		tasks := MustGenerateWorkload(WorkloadConfig{
			NumTasks: 800, Rate: RateForLevel(Level34k), VarFrac: 0.10, Beta: 2.0,
		}, matrix, NewRNG(int64(i)))
		sim, err := NewSimulator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleTrialPAMTelemetry is BenchmarkSingleTrialPAM with a live
// probe registry, sampler, and phase timer attached. bench_guard.sh
// compares its allocs/op against the disabled variant in the same run and
// fails if instrumentation costs more than 10% — the measurable half of
// the zero-cost-when-disabled contract (the disabled half is pinned by the
// goldens and the baseline gate on BenchmarkSingleTrialPAM itself).
func BenchmarkSingleTrialPAMTelemetry(b *testing.B) {
	matrix := SPECPET()
	cfg := MustConfigFor("PAM", matrix)
	cfg.Telemetry = &TelemetryOptions{SampleEvery: 100}
	cfg.PhaseTimer = NewPhaseTimer()
	for i := 0; i < b.N; i++ {
		tasks := MustGenerateWorkload(WorkloadConfig{
			NumTasks: 800, Rate: RateForLevel(Level34k), VarFrac: 0.10, Beta: 2.0,
		}, matrix, NewRNG(int64(i)))
		sim, err := NewSimulator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleTrialChurn measures one full 800-task PAM trial under the
// scen-fault fleet scenario (two failures with requeue, two recoveries, a
// degradation window) so the allocation guard also pins the fleet-event
// path: failures drain queues, requeues re-enter the batch, and every
// fleet event forces a full re-mapping against the shrunken fleet.
func BenchmarkSingleTrialChurn(b *testing.B) {
	matrix := SPECPET()
	cfg := MustConfigFor("PAM", matrix)
	cfg.Scenario = FaultScenario()
	for i := 0; i < b.N; i++ {
		wcfg := WorkloadConfig{
			NumTasks: 800, Rate: RateForLevel(Level19k), VarFrac: 0.10, Beta: 2.0,
		}
		cfg.Scenario.ApplyBursts(&wcfg)
		tasks := MustGenerateWorkload(wcfg, matrix, NewRNG(int64(i)))
		sim, err := NewSimulator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamTrialPAM1M pushes one million tasks through a single PAM
// trial fed by the constant-memory streaming source: arrivals are pulled
// on demand, retired tasks recycle through the pool, and accounting runs
// in streaming counters — so the reported B/op stays bounded by the live
// set (fleet + in-flight tasks + pool high-water) instead of growing with
// the task count. The arrivals/sec metric is the engine's end-to-end
// streaming throughput.
func BenchmarkStreamTrialPAM1M(b *testing.B) {
	const numTasks = 1_000_000
	matrix := SPECPET()
	cfg := MustConfigFor("PAM", matrix)
	for i := 0; i < b.N; i++ {
		src, err := NewWorkloadStream(WorkloadConfig{
			NumTasks: numTasks, Rate: RateForLevel(Level34k), VarFrac: 0.10, Beta: 2.0,
		}, matrix, NewRNG(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		sim, err := NewSimulator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		st, err := sim.RunSource(src)
		if err != nil {
			b.Fatal(err)
		}
		if st.Total != numTasks {
			b.Fatalf("trial accounted %d of %d tasks", st.Total, numTasks)
		}
	}
	b.ReportMetric(float64(numTasks)*float64(b.N)/b.Elapsed().Seconds(), "arrivals/sec")
}

// benchClusterTrial measures one full 800-task trial sharded across four
// datacenters. Workload generation and engine construction run outside the
// timed region (StopTimer/StartTimer), so the recorded ns/op, B/op and
// allocs/op are the engine's warm steady state — the committed baseline
// gates those steady-state numbers, and bench_guard rejects one-iteration
// baselines whose first-run warm-up would roughly double the alloc count.
func benchClusterTrial(b *testing.B, route string, parallel bool) {
	b.Helper()
	matrix := SPECPET()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tasks := MustGenerateWorkload(WorkloadConfig{
			NumTasks: 800, Rate: RateForLevel(Level34k), VarFrac: 0.10, Beta: 2.0,
		}, matrix, NewRNG(int64(i)))
		policy, err := NewDispatchPolicy(route)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := NewCluster(ClusterConfig{
			DCs: 4, Policy: policy, Parallel: parallel,
			Sim: MustConfigFor("PAM", matrix),
		})
		if err != nil {
			b.Fatal(err)
		}
		src := WorkloadFromTasks(tasks)
		b.StartTimer()
		st, _, err := eng.RunSource(src)
		if err != nil {
			b.Fatal(err)
		}
		if st.Total != 800 {
			b.Fatalf("cluster trial accounted %d of 800 tasks", st.Total)
		}
	}
	b.ReportMetric(800*float64(b.N)/b.Elapsed().Seconds(), "arrivals/sec")
}

// BenchmarkClusterTrialPAM measures one full 800-task PAM trial sharded
// across four datacenters behind the PET-aware dispatcher — the
// single-fleet trial's cluster counterpart. The bench guard pins its
// allocs/op and B/op, which is what keeps per-arrival dispatch
// allocation-free: routing is pure profile lookups over live machine
// state, each DC's simulator runs the same arena/cache steady state as
// the single fleet, and the cluster-level aggregate observes exits into
// bounded heaps.
func BenchmarkClusterTrialPAM(b *testing.B) {
	benchClusterTrial(b, "pet-aware", false)
}

// BenchmarkClusterTrialPAMParallel is BenchmarkClusterTrialPAM with the
// per-DC stepping goroutines enabled (the -dcpar path). The PET-aware
// dispatcher needs a barrier at every arrival, so the parallel win is
// bounded by the sequential routing chain; the bench exists to pin the
// parallel path's allocation profile and to make the (core-dependent)
// speedup measurable next to the sequential number.
func BenchmarkClusterTrialPAMParallel(b *testing.B) {
	benchClusterTrial(b, "pet-aware", true)
}

// BenchmarkClusterTrialRR measures the same sharded trial behind the
// state-free round-robin dispatcher — the sequential baseline for the
// wide-window parallel variant below.
func BenchmarkClusterTrialRR(b *testing.B) {
	benchClusterTrial(b, "round-robin", false)
}

// BenchmarkClusterTrialRRParallel exercises the wide-window pipelined
// driver: round-robin is state-free, so the engine routes whole
// inter-cluster-event windows into the per-DC worker queues and barriers
// only at cluster events. This is the variant where per-DC parallelism
// approaches linear scaling on multi-core hosts.
func BenchmarkClusterTrialRRParallel(b *testing.B) {
	benchClusterTrial(b, "round-robin", true)
}

// BenchmarkSingleTrialMM is the baseline counterpart of
// BenchmarkSingleTrialPAM (scalar heuristics skip all convolution work).
func BenchmarkSingleTrialMM(b *testing.B) {
	matrix := SPECPET()
	cfg := MustConfigFor("MM", matrix)
	for i := 0; i < b.N; i++ {
		tasks := MustGenerateWorkload(WorkloadConfig{
			NumTasks: 800, Rate: RateForLevel(Level34k), VarFrac: 0.10, Beta: 2.0,
		}, matrix, NewRNG(int64(i)))
		sim, err := NewSimulator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMOCThreshold measures the MOC culling-threshold sweep.
func BenchmarkAblationMOCThreshold(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMOCThreshold(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionPreemption measures the preemption future-work
// extension (PAM vs PAM+preempt).
func BenchmarkExtensionPreemption(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionPreemption(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionApproximate measures the approximate-computing
// future-work extension.
func BenchmarkExtensionApproximate(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionApproximate(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPETDrift measures the PET-staleness sensitivity study.
func BenchmarkAblationPETDrift(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPETDrift(o); err != nil {
			b.Fatal(err)
		}
	}
}
