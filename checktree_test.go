package taskprune

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestCheckTreeGuard exercises scripts/check_tree.sh both ways: the real
// repository must pass, and scratch repositories that track a compiled
// test binary or an oversized blob must fail — so the guard itself cannot
// silently rot into a no-op.
func TestCheckTreeGuard(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not available")
	}
	script, err := filepath.Abs("scripts/check_tree.sh")
	if err != nil {
		t.Fatal(err)
	}

	run := func(dir string) (string, error) {
		out, err := exec.Command("sh", script, dir).CombinedOutput()
		return string(out), err
	}

	t.Run("repo-passes", func(t *testing.T) {
		if out, err := run("."); err != nil {
			t.Fatalf("check_tree failed on the real repo: %v\n%s", err, out)
		}
	})

	// scratch builds a temp git repo tracking the given files.
	scratch := func(t *testing.T, files map[string][]byte) string {
		t.Helper()
		dir := t.TempDir()
		if out, err := exec.Command("git", "-C", dir, "init", "-q").CombinedOutput(); err != nil {
			t.Fatalf("git init: %v\n%s", err, out)
		}
		for name, body := range files {
			path := filepath.Join(dir, name)
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, body, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if out, err := exec.Command("git", "-C", dir, "add", "-A").CombinedOutput(); err != nil {
			t.Fatalf("git add: %v\n%s", err, out)
		}
		return dir
	}

	t.Run("rejects-test-binary", func(t *testing.T) {
		dir := scratch(t, map[string][]byte{
			"main.go":        []byte("package main\n"),
			"taskprune.test": []byte("\x7fELF fake compiled test binary"),
		})
		out, err := run(dir)
		if err == nil {
			t.Fatalf("tracked *.test binary passed the guard:\n%s", out)
		}
		if !bytes.Contains([]byte(out), []byte("taskprune.test")) {
			t.Fatalf("failure does not name the binary:\n%s", out)
		}
	})

	t.Run("rejects-large-blob", func(t *testing.T) {
		dir := scratch(t, map[string][]byte{
			"big.bin": make([]byte, 1<<20+1),
		})
		out, err := run(dir)
		if err == nil {
			t.Fatalf("tracked >1MB blob passed the guard:\n%s", out)
		}
		if !bytes.Contains([]byte(out), []byte("big.bin")) {
			t.Fatalf("failure does not name the blob:\n%s", out)
		}
	})

	t.Run("allows-large-testdata", func(t *testing.T) {
		dir := scratch(t, map[string][]byte{
			"pkg/testdata/golden.trace": make([]byte, 1<<20+1),
		})
		if out, err := run(dir); err != nil {
			t.Fatalf("testdata blob rejected: %v\n%s", err, out)
		}
	})
}
