module taskprune

go 1.24
